package proc

import (
	"testing"

	"cgct/internal/addr"
)

func line(i uint64) addr.LineAddr { return addr.LineAddr(0x100000 + i*64) }

func TestStreamDetectionAndRunahead(t *testing.T) {
	p := NewStreamPrefetcher(8, 5, 64)
	// First miss allocates a stream, no prefetch yet.
	if hints := p.OnAccess(line(0), false, true); len(hints) != 0 {
		t.Fatalf("first miss issued %d prefetches", len(hints))
	}
	// Second sequential access confirms the stream and extends runahead.
	hints := p.OnAccess(line(1), false, true)
	if len(hints) != 5 {
		t.Fatalf("confirmed stream issued %d hints, want 5", len(hints))
	}
	for i, h := range hints {
		if h.Line != line(uint64(2+i)) {
			t.Errorf("hint %d = %x, want %x", i, uint64(h.Line), uint64(line(uint64(2+i))))
		}
		if h.Exclusive {
			t.Error("load stream issued exclusive prefetch")
		}
	}
	// Consuming the next line re-extends by one.
	hints = p.OnAccess(line(2), false, false)
	if len(hints) != 1 || hints[0].Line != line(7) {
		t.Errorf("steady-state hints = %v", hints)
	}
}

func TestHitsKeepStreamAlive(t *testing.T) {
	p := NewStreamPrefetcher(8, 5, 64)
	p.OnAccess(line(0), false, true)
	p.OnAccess(line(1), false, true)
	// All subsequent accesses hit (covered stream); the stream must keep
	// producing runahead anyway.
	total := 0
	for i := uint64(2); i < 10; i++ {
		total += len(p.OnAccess(line(i), false, false))
	}
	if total == 0 {
		t.Error("stream died once its misses were covered")
	}
	if p.ActiveStreams() != 1 {
		t.Errorf("active streams = %d", p.ActiveStreams())
	}
}

func TestExclusivePrefetchForStores(t *testing.T) {
	p := NewStreamPrefetcher(8, 5, 64)
	p.OnAccess(line(0), true, true)
	hints := p.OnAccess(line(1), true, true)
	if len(hints) == 0 {
		t.Fatal("no hints for store stream")
	}
	for _, h := range hints {
		if !h.Exclusive {
			t.Error("store stream must prefetch exclusively")
		}
	}
}

func TestStoreUpgradesExistingStream(t *testing.T) {
	p := NewStreamPrefetcher(8, 5, 64)
	p.OnAccess(line(0), false, true)
	p.OnAccess(line(1), false, true) // load stream
	hints := p.OnAccess(line(2), true, false)
	for _, h := range hints {
		if !h.Exclusive {
			t.Error("stream touched by a store must turn exclusive")
		}
	}
}

func TestPageBoundary(t *testing.T) {
	p := NewStreamPrefetcher(8, 5, 64)
	// Lines 62,63 are the last two of a 4KB page (64 lines/page); runahead
	// must not cross into the next page.
	base := addr.LineAddr(0x200000) // page-aligned
	l := func(i uint64) addr.LineAddr { return addr.LineAddr(uint64(base) + i*64) }
	p.OnAccess(l(61), false, true)
	hints := p.OnAccess(l(62), false, true)
	for _, h := range hints {
		if uint64(h.Line)/4096 != uint64(base)/4096 {
			t.Errorf("prefetch %x crossed the page boundary", uint64(h.Line))
		}
	}
	if len(hints) != 1 { // only line 63 remains in the page
		t.Errorf("issued %d hints at page edge, want 1", len(hints))
	}
}

func TestStreamReplacementLRU(t *testing.T) {
	p := NewStreamPrefetcher(2, 3, 64) // only 2 streams
	p.OnAccess(line(0), false, true)
	p.OnAccess(line(1000), false, true)
	p.OnAccess(line(2000), false, true) // evicts the LRU stream (line 0's)
	// The first stream is gone: accessing its expected next line allocates
	// fresh instead of advancing.
	if hints := p.OnAccess(line(1), false, true); len(hints) != 0 {
		t.Error("evicted stream still advanced")
	}
	if p.Allocated != 4 {
		t.Errorf("allocations = %d, want 4", p.Allocated)
	}
}

func TestNonSequentialDoesNotConfirm(t *testing.T) {
	p := NewStreamPrefetcher(8, 5, 64)
	p.OnAccess(line(0), false, true)
	if hints := p.OnAccess(line(10), false, true); len(hints) != 0 {
		t.Error("random misses triggered prefetch")
	}
	if p.ActiveStreams() != 0 {
		t.Error("unconfirmed streams counted as active")
	}
}

func TestHitsDoNotAllocate(t *testing.T) {
	p := NewStreamPrefetcher(8, 5, 64)
	p.OnAccess(line(5), false, false) // hit with no matching stream
	if p.Allocated != 0 {
		t.Error("hit allocated a stream")
	}
}

func TestDegenerateParams(t *testing.T) {
	p := NewStreamPrefetcher(0, -1, 64) // coerced to 1 stream, 0 runahead
	p.OnAccess(line(0), false, true)
	if hints := p.OnAccess(line(1), false, true); len(hints) != 0 {
		t.Error("zero runahead issued prefetches")
	}
}
