// Package proc holds processor-side components that are independent of the
// timing engine: the Power4-style stream prefetcher (8 streams, 5-line
// runahead in the paper's configuration) with MIPS-R10000-style exclusive
// prefetching for store streams.
//
// Streams never cross a 4 KB page boundary, as in the real Power4 engine:
// physically contiguous pages need not be virtually contiguous, so
// prefetching past the page would fetch unrelated data. A stream dies at
// its page's edge and is re-allocated by the first miss in the next page.
package proc

import "cgct/internal/addr"

// prefetchPageBytes bounds a stream to one page.
const prefetchPageBytes = 4096

func samePage(a, b addr.LineAddr) bool {
	return uint64(a)/prefetchPageBytes == uint64(b)/prefetchPageBytes
}

// PrefetchHint is one line the prefetcher wants brought into the cache.
type PrefetchHint struct {
	Line addr.LineAddr
	// Exclusive requests the line in a writable state (exclusive
	// prefetching for store streams).
	Exclusive bool
}

type stream struct {
	valid     bool
	nextLine  addr.LineAddr // line whose arrival would advance the stream
	dir       int64         // +1 or -1 line
	confirmed bool          // two sequential misses seen; prefetching active
	exclusive bool          // triggered by stores
	issued    int           // lines of runahead already issued
	lastUse   uint64
}

// StreamPrefetcher detects sequential miss streams and issues runahead
// prefetches, in the style of the IBM Power4 prefetch engine.
type StreamPrefetcher struct {
	streams  []stream
	runahead int
	lineSz   uint64
	tick     uint64
	hintBuf  []PrefetchHint // reused across OnAccess calls

	Issued    uint64 // prefetch hints produced
	Allocated uint64 // new streams allocated
}

// NewStreamPrefetcher builds a prefetcher with the given stream count and
// per-stream runahead distance.
func NewStreamPrefetcher(streams, runahead int, lineBytes uint64) *StreamPrefetcher {
	if streams <= 0 {
		streams = 1
	}
	if runahead < 0 {
		runahead = 0
	}
	return &StreamPrefetcher{
		streams:  make([]stream, streams),
		runahead: runahead,
		lineSz:   lineBytes,
	}
}

func (p *StreamPrefetcher) step(l addr.LineAddr, dir int64) addr.LineAddr {
	return addr.LineAddr(uint64(l) + uint64(dir)*p.lineSz)
}

// OnAccess observes a demand access (hit or miss) to line l at the L2 and
// returns the prefetches to issue now. Streams advance on every access to
// their expected next line — including hits to lines the prefetcher itself
// brought in, which is what keeps a stream alive once it is covering its
// misses (Power4-style). New streams are allocated only on misses.
//
// The returned slice is owned by the prefetcher and valid only until the
// next OnAccess call; callers must consume it immediately.
func (p *StreamPrefetcher) OnAccess(l addr.LineAddr, isStore, wasMiss bool) []PrefetchHint {
	p.tick++
	// Advance a matching stream.
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid || s.nextLine != l {
			continue
		}
		s.lastUse = p.tick
		s.confirmed = true
		if isStore {
			s.exclusive = true
		}
		s.nextLine = p.step(l, s.dir)
		if s.issued > 0 {
			s.issued-- // the stream consumed one line of runahead
		}
		hints := p.hintBuf[:0]
		// Re-extend the runahead window, stopping at the page edge.
		for s.issued < p.runahead {
			next := addr.LineAddr(uint64(l) + uint64(s.dir)*uint64(s.issued+1)*p.lineSz)
			if !samePage(l, next) {
				break
			}
			s.issued++
			hints = append(hints, PrefetchHint{Line: next, Exclusive: s.exclusive})
		}
		p.hintBuf = hints
		p.Issued += uint64(len(hints))
		return hints
	}
	if !wasMiss {
		return nil
	}
	victim := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lastUse < p.streams[victim].lastUse {
			victim = i
		}
	}
	p.streams[victim] = stream{
		valid:     true,
		nextLine:  p.step(l, 1),
		dir:       1,
		exclusive: isStore,
		lastUse:   p.tick,
	}
	p.Allocated++
	return nil
}

// ActiveStreams returns the number of confirmed streams (diagnostics).
func (p *StreamPrefetcher) ActiveStreams() int {
	n := 0
	for i := range p.streams {
		if p.streams[i].valid && p.streams[i].confirmed {
			n++
		}
	}
	return n
}
