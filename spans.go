package cgct

import (
	"context"
	"time"
)

// Phase names emitted by RunContext, in execution order. The serving layer
// prepends its own "queued"/"admitted" phases and appends "finalize", so a
// job's full span list tiles its submit→finish latency exactly.
const (
	PhaseTraceCompile = "trace-compile" // workload build / compiled-trace cache
	PhaseSimulate     = "simulate"      // system construction + event loop
	PhaseAggregate    = "aggregate"     // stats.Run → Result summarisation
)

// Span is one named, contiguous slice of a run's wall-clock time.
// RunContext emits spans back-to-back (each phase starts where the
// previous one ended), so their durations sum to the run's total.
type Span struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

type spanRecorderKey struct{}

// WithSpanRecorder returns a context that makes RunContext report each
// phase of the run (trace-compile, simulate, aggregate) to rec as it
// completes. rec is called synchronously from the running goroutine and
// must be cheap; the job server uses this to attach phase breakdowns to
// job records and export chrome://tracing timelines.
func WithSpanRecorder(ctx context.Context, rec func(Span)) context.Context {
	return context.WithValue(ctx, spanRecorderKey{}, rec)
}

// spanRecorderFrom returns the recorder carried by ctx, or nil.
func spanRecorderFrom(ctx context.Context) func(Span) {
	rec, _ := ctx.Value(spanRecorderKey{}).(func(Span))
	return rec
}

// recordSpan reports one phase to ctx's recorder, if any.
func recordSpan(rec func(Span), name string, start, end time.Time) {
	if rec != nil {
		rec(Span{Name: name, Start: start, End: end})
	}
}
