// Command cgctexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	cgctexperiments -experiment all
//	cgctexperiments -experiment fig8 -ops 400000 -seeds 3
//	cgctexperiments -experiment fig2 -benchmarks tpc-w,tpc-h
//
// Experiments: table1, table2, fig2, fig6, fig7, fig8, fig9, fig10,
// evictions, all.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cgct/internal/experiments"
	"cgct/internal/profiling"
)

// csvDir, when set, receives one CSV file per experiment next to the
// printed tables.
var csvDir string

// csvFailed records any CSV write error; main exits nonzero when set, so
// a partial --csv directory can't masquerade as a successful export.
var csvFailed bool

// emit prints a rendered table and mirrors it to <csvDir>/<name>.csv.
func emit(name string, header []string, rows [][]string) {
	fmt.Println(experiments.Render(header, rows))
	if csvDir == "" {
		return
	}
	path := filepath.Join(csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
		csvFailed = true
		return
	}
	w := csv.NewWriter(f)
	_ = w.Write(header) // errors surface via w.Error() after Flush
	_ = w.WriteAll(rows)
	w.Flush()
	if err := w.Error(); err != nil {
		fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
		csvFailed = true
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
		csvFailed = true
	}
}

func main() {
	var (
		exp        = flag.String("experiment", "all", "which experiment to run (table1,table2,fig2,fig6,fig7,fig8,fig9,fig10,evictions,ablation,fabric,energy,sectoring,all)")
		ops        = flag.Int("ops", 400_000, "trace length per processor")
		seeds      = flag.Int("seeds", 3, "number of seeded runs per configuration")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all nine)")
		parallel   = flag.Int("parallel", 0, "worker goroutines for the batched sweep engine; same-workload variants additionally share one trace decode in lockstep (default GOMAXPROCS)")
		csvOut     = flag.String("csv", "", "also write each experiment's rows to CSV files in this directory")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	csvDir = *csvOut
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	p := experiments.Params{OpsPerProc: *ops, Parallel: *parallel}
	for i := 0; i < *seeds; i++ {
		p.Seeds = append(p.Seeds, uint64(i+1))
	}
	if *benchmarks != "" {
		p.Benchmarks = strings.Split(*benchmarks, ",")
	}

	known := map[string]func(experiments.Params){
		"table1":    func(experiments.Params) { printTable1() },
		"table2":    func(experiments.Params) { printTable2() },
		"fig2":      printFig2,
		"fig6":      func(experiments.Params) { printFig6() },
		"fig7":      printFig7,
		"fig8":      printFig8,
		"fig9":      printFig9,
		"fig10":     printFig10,
		"evictions": printEvictions,
		"ablation":  printAblation,
		"fabric":    printFabric,
		"energy":    printEnergy,
		"sectoring": printSectoring,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "fig6", "fig2", "fig7", "fig8", "fig9", "fig10", "evictions", "ablation", "fabric", "energy", "sectoring"} {
			known[name](p)
		}
	} else {
		fn, ok := known[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		fn(p)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		csvFailed = true
	}
	if csvFailed {
		os.Exit(1)
	}
}

func printTable1() {
	fmt.Println("== Table 1: region protocol states ==")
	var rows [][]string
	for _, r := range experiments.Table1() {
		rows = append(rows, []string{r.State.String(), r.Processor, r.OtherProcessors, r.BroadcastNeeded})
	}
	emit("table1", []string{"State", "Processor", "Other Processors", "Broadcast Needed?"}, rows)
}

func printTable2() {
	fmt.Println("== Table 2: RCA storage overhead ==")
	var rows [][]string
	for _, r := range experiments.Table2() {
		rows = append(rows, []string{
			fmt.Sprintf("%dK", r.Entries/1024),
			fmt.Sprintf("%dB", r.RegionBytes),
			fmt.Sprint(r.TagBits), fmt.Sprint(r.StateBits), fmt.Sprint(r.LineCount),
			fmt.Sprint(r.MemCtrlBits), fmt.Sprint(r.LRUBits), fmt.Sprint(r.ECCBits),
			fmt.Sprint(r.TotalBits),
			fmt.Sprintf("%.1f%%", 100*r.TagSpaceOverhead),
			fmt.Sprintf("%.1f%%", 100*r.CacheSpaceOverhead),
		})
	}
	emit("table2", []string{"Entries", "Region", "Tag", "State", "Count", "MC", "LRU", "ECC", "Bits/set", "TagOvh", "CacheOvh"}, rows)
}

func printFig2(p experiments.Params) {
	fmt.Println("== Figure 2: unnecessary broadcasts (baseline, oracle classification) ==")
	rows := experiments.Figure2(p)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f", r.DataPct), fmt.Sprintf("%.1f", r.WBPct),
			fmt.Sprintf("%.1f", r.IFetchPct), fmt.Sprintf("%.1f", r.DCBPct),
			fmt.Sprintf("%.1f", r.TotalPct),
		})
	}
	emit("figure2", []string{"benchmark", "data%", "wb%", "ifetch%", "dcb%", "total%"}, out)
	fmt.Printf("average unnecessary: %.1f%% (paper: 67%%, range 15-94%%)\n\n", experiments.Figure2Average(rows))
}

func printFig6() {
	fmt.Println("== Figure 6: memory request latency (system cycles) ==")
	var out [][]string
	for _, r := range experiments.Figure6() {
		paper := "-"
		if r.PaperSys > 0 {
			paper = fmt.Sprintf("%.0f", r.PaperSys)
		}
		out = append(out, []string{r.Scenario, r.Components, fmt.Sprintf("%.1f", r.SysCycles), paper})
	}
	emit("figure6", []string{"scenario", "components", "model", "paper"}, out)
}

func printFig7(p experiments.Params) {
	fmt.Println("== Figure 7: broadcasts avoided by CGCT (% of all requests) ==")
	var out [][]string
	for _, r := range experiments.Figure7(p) {
		out = append(out, []string{
			r.Benchmark, fmt.Sprintf("%.1f", r.OraclePct),
			fmt.Sprintf("%.1f", r.Avoided[256]), fmt.Sprintf("%.1f", r.Avoided[512]), fmt.Sprintf("%.1f", r.Avoided[1024]),
			fmt.Sprintf("%.0f%%", r.Captured[512]),
		})
	}
	emit("figure7", []string{"benchmark", "oracle%", "256B", "512B", "1KB", "captured@512B"}, out)
	fmt.Println("(paper: CGCT eliminates 55-97% of the unnecessary broadcasts)")
	fmt.Println()
}

func printFig8(p experiments.Params) {
	fmt.Println("== Figure 8: run-time reduction (%) ==")
	rows := experiments.Figure8(p)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f ±%.1f", r.Reduction[256].Mean, r.Reduction[256].CI95),
			fmt.Sprintf("%.1f ±%.1f", r.Reduction[512].Mean, r.Reduction[512].CI95),
			fmt.Sprintf("%.1f ±%.1f", r.Reduction[1024].Mean, r.Reduction[1024].CI95),
		})
	}
	emit("figure8", []string{"benchmark", "256B", "512B", "1KB"}, out)
	overall, commercial := experiments.Figure8Averages(rows, 512)
	fmt.Printf("512B averages: overall %.1f%% (paper 8.8%%), commercial %.1f%% (paper 10.4%%)\n\n", overall, commercial)
}

func printFig9(p experiments.Params) {
	fmt.Println("== Figure 9: half-size RCA (512B regions) ==")
	var out [][]string
	for _, r := range experiments.Figure9(p) {
		out = append(out, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f ±%.1f", r.Full.Mean, r.Full.CI95),
			fmt.Sprintf("%.1f ±%.1f", r.Half.Mean, r.Half.CI95),
			fmt.Sprintf("%.2f", r.Full.Mean-r.Half.Mean),
		})
	}
	emit("figure9", []string{"benchmark", "16K entries", "8K entries", "delta"}, out)
	fmt.Println("(paper: only ~1% difference on average)")
	fmt.Println()
}

func printFig10(p experiments.Params) {
	fmt.Println("== Figure 10: broadcasts per 100K cycles ==")
	var out [][]string
	for _, r := range experiments.Figure10(p) {
		out = append(out, []string{
			r.Benchmark,
			fmt.Sprintf("%.0f", r.BaseAvg), fmt.Sprintf("%.0f", r.CGCTAvg), fmt.Sprintf("%.2f", r.AvgRatio),
			fmt.Sprintf("%.0f", r.BasePeak), fmt.Sprintf("%.0f", r.CGCTPeak), fmt.Sprintf("%.2f", r.PeakRatio),
		})
	}
	emit("figure10", []string{"benchmark", "base avg", "cgct avg", "ratio", "base peak", "cgct peak", "ratio"}, out)
	fmt.Println("(paper: average and peak both reduced to less than half)")
	fmt.Println()
}

func printEvictions(p experiments.Params) {
	fmt.Println("== §3.2: RCA eviction statistics (512B regions) ==")
	var out [][]string
	for _, r := range experiments.Evictions(p) {
		out = append(out, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f", r.EmptyPct),
			fmt.Sprintf("%.1f", r.AvgLinesAtEv),
			fmt.Sprint(r.SelfInvals),
			fmt.Sprintf("%.2f", r.RCAHitRatio),
			fmt.Sprintf("%.4f", r.L2MissRatioBas),
			fmt.Sprintf("%.4f", r.L2MissRatioCG),
		})
	}
	emit("evictions", []string{"benchmark", "empty-evict%", "avg lines", "self-invals", "rca hit", "L2 miss (base)", "L2 miss (cgct)"}, out)
	fmt.Println("(paper: 65.1% empty, miss-ratio increase ~1.2%)")
	fmt.Println()
}

func printAblation(p experiments.Params) {
	fmt.Println("== Ablation: 7-state vs scaled-back 3-state protocol (§3.4), prefetch filter (§6) ==")
	var out [][]string
	for _, r := range experiments.Ablation(p) {
		out = append(out, []string{
			r.Benchmark,
			fmt.Sprintf("%.1f", r.Full), fmt.Sprintf("%.1f", r.Scaled),
			fmt.Sprintf("%.1f", r.FullWithFilter), fmt.Sprintf("%.1f", r.FullWithRegionPf),
			fmt.Sprintf("%.1f", r.FullAvoided), fmt.Sprintf("%.1f", r.ScaledAvoided),
		})
	}
	emit("ablation", []string{"benchmark", "red% 7-state", "red% 3-state", "red% +pf-filter", "red% +region-pf", "avoid% 7st", "avoid% 3st"}, out)
	fmt.Println("(paper §3.4: one response bit suffices for a cheaper but less effective design)")
	fmt.Println()
}

func printFabric(p experiments.Params) {
	fmt.Println("== Fabric comparison: snooping baseline vs CGCT vs directory (±CGCT) ==")
	var out [][]string
	for _, r := range experiments.Fabric(p, []int{4, 16}) {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Processors), r.Benchmark,
			fmt.Sprintf("%.1f", r.CGCT), fmt.Sprintf("%.1f", r.Scout),
			fmt.Sprintf("%.1f", r.Directory), fmt.Sprintf("%.1f", r.DirCGCT),
			fmt.Sprint(r.CGCTC2C), fmt.Sprint(r.DirThreeHops),
			fmt.Sprint(r.BaseBroadcasts), fmt.Sprint(r.CGCTBroadcasts),
			fmt.Sprint(r.DirMessages), fmt.Sprint(r.DirCGCTMessages), fmt.Sprint(r.DirFastPaths),
		})
	}
	emit("fabric", []string{"procs", "benchmark", "cgct red%", "scout red%", "dir red%", "dir+cgct red%", "cgct c2c", "dir 3-hop", "base bcast", "cgct bcast", "dir msgs", "dir+cgct msgs", "fast paths"}, out)
	fmt.Println("(the paper's intro: CGCT gets directory-like latency for non-shared data")
	fmt.Println(" while keeping two-hop cache-to-cache transfers and the snooping substrate)")
	fmt.Println()
}

func printEnergy(p experiments.Params) {
	fmt.Println("== §6 energy model: where CGCT saves and what the RCA costs ==")
	var out [][]string
	for _, r := range experiments.Energy(p) {
		out = append(out, []string{
			r.Benchmark,
			fmt.Sprintf("%.0f", r.BaseTotal/1000), fmt.Sprintf("%.0f", r.CGCTTotal/1000),
			fmt.Sprintf("%.1f", r.SavingsPct),
			fmt.Sprintf("%.0f", r.NetworkSaved/1000), fmt.Sprintf("%.0f", r.TagProbesSaved/1000),
			fmt.Sprintf("%.0f", r.RegionOverhead/1000),
			fmt.Sprintf("%.2f", r.OverheadShare),
		})
	}
	fmt.Println(experiments.Render(
		[]string{"benchmark", "base (k)", "cgct (k)", "save%", "net saved", "tag saved", "rca cost", "cost/gross"}, out))
	fmt.Println("(§6: network, tag-lookup and DRAM energy can be saved; the RCA's own")
	fmt.Println(" lookups cancel part of it — the cost/gross column quantifies how much)")
	fmt.Println()
}

func printSectoring(p experiments.Params) {
	fmt.Println("== §2: sectored caches vs CGCT (L2 miss ratios) ==")
	var out [][]string
	for _, r := range experiments.Sectoring(p) {
		out = append(out, []string{
			r.Benchmark,
			fmt.Sprintf("%.4f", r.Baseline),
			fmt.Sprintf("%.4f (%+.1f%%)", r.Sector512, r.Sector512Pct),
			fmt.Sprintf("%.4f (%+.1f%%)", r.Sector1K, r.Sector1KPct),
			fmt.Sprintf("%.4f (%+.1f%%)", r.CGCT512, r.CGCTPct),
		})
	}
	fmt.Println(experiments.Render(
		[]string{"benchmark", "baseline", "sectored 512B", "sectored 1KB", "CGCT 512B"}, out))
	fmt.Println("(§2: sector fragmentation raises miss ratios; CGCT tracks regions beside")
	fmt.Println(" the cache and leaves the miss ratio essentially unchanged)")
	fmt.Println()
}
