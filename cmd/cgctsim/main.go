// Command cgctsim runs a single simulation and prints its statistics.
//
// Usage:
//
//	cgctsim -benchmark tpc-w -cgct -region 512
//	cgctsim -benchmark barnes -ops 1000000 -seed 7
//	cgctsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"cgct"
	"cgct/internal/profiling"
)

func main() {
	var (
		bench   = flag.String("benchmark", "tpc-w", "workload to run (see -list)")
		list    = flag.Bool("list", false, "list available benchmarks and exit")
		ops     = flag.Int("ops", 400_000, "trace length per processor")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		useCGCT = flag.Bool("cgct", false, "enable Coarse-Grain Coherence Tracking")
		region  = flag.Uint64("region", 512, "region size in bytes (256/512/1024)")
		rcaSets = flag.Uint64("rcasets", 0, "override RCA set count (default 8192)")
		procs   = flag.Int("procs", 0, "processor count (default 4)")
		checks  = flag.Bool("checks", false, "enable coherence invariant checks (slow)")
		scaled  = flag.Bool("scaled", false, "use the scaled-back 3-state protocol (§3.4)")
		pfilter = flag.Bool("pffilter", false, "filter prefetches by region state (§6)")
		dma     = flag.Uint64("dma", 0, "DMA write interval in cycles (0 = no I/O traffic)")
		regpf   = flag.Bool("regionpf", false, "prefetch the next region's global state (§6)")
		fabric  = flag.String("fabric", "snoop", "coherence fabric: snoop or directory")
		dscheme = flag.String("dirscheme", "full-map", "directory sharer tracking: full-map or limited")
		dptrs   = flag.Int("dirpointers", 0, "limited-directory pointers per entry (1..8)")
		dents   = flag.Uint64("direntries", 0, "sparse-directory entries per home (0 = unbounded)")
		trace   = flag.String("trace", "", "replay a trace file saved by cgcttrace -save instead of a benchmark")
		ctrace  = flag.String("ctrace", "", "replay a compiled-trace file written by cgcttrace -compile instead of a benchmark")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		simPar  = flag.Int("simpar", 0, "goroutines for one run's node partitions (conservative PDES; 0/1 = sequential, results identical)")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		for _, b := range cgct.Benchmarks() {
			fmt.Printf("%-16s %-18s %s\n", b.Name, b.Category, b.Comment)
		}
		return
	}

	opts := cgct.Options{
		Processors:           *procs,
		OpsPerProc:           *ops,
		Seed:                 *seed,
		CGCT:                 *useCGCT,
		RegionBytes:          *region,
		RCASets:              *rcaSets,
		DebugChecks:          *checks,
		ScaledBack:           *scaled,
		PrefetchRegionFilter: *pfilter,
		RegionPrefetch:       *regpf,
		DMAIntervalCycles:    *dma,
		Fabric:               *fabric,
		DirScheme:            *dscheme,
		DirPointers:          *dptrs,
		DirEntriesPerHome:    *dents,
		SimParallelism:       *simPar,
	}
	var res *cgct.Result
	if *ctrace != "" {
		res, err = cgct.RunCompiledTrace(*ctrace, opts)
	} else if *trace != "" {
		res, err = cgct.RunTrace(*trace, opts)
	} else {
		res, err = cgct.Run(*bench, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println(res)
	fmt.Printf("  cycles:              %d\n", res.Cycles)
	fmt.Printf("  instructions:        %d (IPC %.2f per processor)\n", res.Instructions,
		float64(res.Instructions)/float64(res.Cycles)/4)
	fmt.Printf("  fabric requests:     %d (data %d, wb %d, ifetch %d, dcb %d)\n",
		res.Requests, res.RequestsByCat.Data, res.RequestsByCat.Writebacks,
		res.RequestsByCat.IFetches, res.RequestsByCat.DCBOps)
	fmt.Printf("  broadcasts:          %d (%.0f avg / %d peak per 100K cycles)\n",
		res.Broadcasts, res.AvgBroadcastsPer100K, res.PeakBroadcastsPer100K)
	fmt.Printf("  direct to memory:    %d\n", res.Directs)
	fmt.Printf("  completed locally:   %d\n", res.Locals)
	fmt.Printf("  cache-to-cache:      %d\n", res.CacheToCache)
	fmt.Printf("  oracle unnecessary:  %.1f%% of broadcasts\n", 100*res.UnnecessaryFraction())
	fmt.Printf("  demand misses:       %d (avg exposed stall %.0f cycles)\n",
		res.DemandMisses, res.AvgDemandMissLatency)
	fmt.Printf("  L2 miss ratio:       %.4f\n", res.L2MissRatio)
	if res.DMAWrites > 0 {
		fmt.Printf("  DMA buffer writes:   %d\n", res.DMAWrites)
	}
	if res.RegionProbes > 0 {
		fmt.Printf("  region-state probes: %d\n", res.RegionProbes)
	}
	if res.PartitionEvents != nil {
		fmt.Printf("  pdes partitions:     %d-way, events %v (last = hub)\n",
			res.SimParallelism, res.PartitionEvents)
	}
	if res.Directory {
		fmt.Printf("  directory messages:  %d (three-hop %d, invalidations %d, spurious %d)\n",
			res.DirMessages, res.ThreeHops, res.DirInvalidations, res.DirExtraInvals)
		fmt.Printf("  home-pipeline wait:  %d cycles queued\n", res.DirQueuedCycles)
		fmt.Printf("  directory entries:   %d allocated, %d peak, %d evicted, %d ptr overflows\n",
			res.DirEntriesAllocated, res.DirPeakEntries, res.DirEntriesEvicted, res.DirPtrOverflows)
		if res.CGCT {
			fmt.Printf("  home-pipeline skips: %d fast paths, %d region notifies\n",
				res.DirFastPaths, res.DirRegionNotifies)
		}
	}
	if res.CGCT {
		fmt.Printf("  RCA hit ratio:       %.3f\n", res.RCAHitRatio)
		fmt.Printf("  RCA evictions:       %d (%.1f%% empty, avg %.1f lines)\n",
			res.RCAEvictions, 100*res.RCAEmptyEvictFrac, res.AvgLinesAtEviction)
		fmt.Printf("  self-invalidations:  %d\n", res.RCASelfInvals)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
