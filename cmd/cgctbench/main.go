// Command cgctbench measures simulation-core throughput and allocation
// behaviour per configuration and writes the results as machine-readable
// JSON, so performance regressions show up as numbers in CI artifacts
// rather than anecdotes.
//
// Usage:
//
//	cgctbench                      # all configs, BENCH_simcore.json
//	cgctbench -config cgct-ocean   # one config
//	cgctbench -out results.json -benchtime 5
//	cgctbench -baseline BENCH_simcore.json   # print deltas vs a committed run
//
// Each config reports ns/op (one op = one full simulation run),
// trace-ops/s (memory operations simulated per wall-clock second),
// allocs/op and bytes/op, plus the trace-generation cost paid once per
// workload (trace_gen_ns) and how many of the timed iterations were
// served from the shared compiled-trace cache (trace_cache_hits). The
// sweep4-* configs measure a ≥4-variant sweep sequentially vs through
// the batched multi-variant engine, recording the scheduler settings
// (parallelism, variants_per_decode) and per-iteration wall vs CPU time
// (wall_ns, cpu_ns) so the scaling curve is visible in the artifact. The
// JSON schema is the benchResult struct below.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"cgct"
	"cgct/internal/trace"
	"cgct/internal/workload"
)

// benchConfig is one measured configuration, mirroring the BenchmarkSim*
// benchmarks in the repository's bench_test.go. A config with Variants
// set is a multi-variant sweep over one workload, executed through the
// batched engine (cgct.RunAll) at the given scheduler settings — or
// strictly sequentially when Parallelism and VariantsPerDecode are both
// 1, which is the sweep's "before" baseline.
type benchConfig struct {
	Name      string
	Benchmark string
	Opts      cgct.Options

	Variants          []cgct.Options
	Parallelism       int
	VariantsPerDecode int
}

// opsPerProc matches bench_test.go's benchmarkRun so cgctbench numbers are
// comparable with `go test -bench BenchmarkSim`.
const opsPerProc = 60_000

// sweepVariants is the ≥4-variant sweep axis the sweep configs measure:
// baseline plus CGCT at three region sizes, all replaying the same
// workload (the paper's Figure 8 sweep shape).
func sweepVariants() []cgct.Options {
	return []cgct.Options{
		{},
		{CGCT: true, RegionBytes: 256},
		{CGCT: true, RegionBytes: 512},
		{CGCT: true, RegionBytes: 1024},
	}
}

func configs() []benchConfig {
	par := runtime.GOMAXPROCS(0)
	if par < 4 {
		par = 4 // the scaling point of record; extra goroutines timeshare on smaller hosts
	}
	return []benchConfig{
		{Name: "baseline-ocean", Benchmark: "ocean"},
		{Name: "cgct-ocean", Benchmark: "ocean", Opts: cgct.Options{CGCT: true}},
		{Name: "baseline-tpcw", Benchmark: "tpc-w"},
		{Name: "cgct-tpcw", Benchmark: "tpc-w", Opts: cgct.Options{CGCT: true}},
		{Name: "cgct-tpch", Benchmark: "tpc-h", Opts: cgct.Options{CGCT: true}},
		{Name: "cgct-16proc-tpcb", Benchmark: "tpc-b", Opts: cgct.Options{Processors: 16, CGCT: true}},
		// The pdes-* configs run one simulation under the intra-run
		// (conservative PDES) engine; compare against cgct-ocean /
		// cgct-16proc-tpcb for the windowed engine's speedup (or, on a
		// single-core host, its coordination overhead).
		{Name: "pdes-ocean", Benchmark: "ocean", Opts: cgct.Options{CGCT: true, SimParallelism: 4}},
		{Name: "pdes-tpcb", Benchmark: "tpc-b", Opts: cgct.Options{Processors: 16, CGCT: true, SimParallelism: par}},
		{Name: "sweep4-ocean-seq", Benchmark: "ocean", Variants: sweepVariants(), Parallelism: 1, VariantsPerDecode: 1},
		{Name: "sweep4-ocean-batched", Benchmark: "ocean", Variants: sweepVariants(), Parallelism: par, VariantsPerDecode: 4},
	}
}

// benchResult is the JSON record for one configuration.
type benchResult struct {
	Name        string  `json:"name"`
	Benchmark   string  `json:"benchmark"`
	CGCT        bool    `json:"cgct"`
	Processors  int     `json:"processors"`
	Runs        int     `json:"runs"`      // benchmark iterations measured
	NsPerOp     int64   `json:"ns_per_op"` // one op = one full simulation
	TraceOpsSec float64 `json:"trace_ops_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimCycles   uint64  `json:"sim_cycles"` // deterministic per config
	// TraceGenNs is the one-time cost of compiling this config's workload
	// into the shared columnar trace (paid once per distinct workload, not
	// per run); the simulation timings below exclude it.
	TraceGenNs int64 `json:"trace_gen_ns"`
	// TraceCacheHits counts timed iterations whose workload came out of
	// the shared compiled-trace cache instead of being regenerated.
	TraceCacheHits uint64 `json:"trace_cache_hits"`
	// Parallelism and VariantsPerDecode record the batched-engine
	// scheduler settings the config ran at (1/1 = strictly sequential);
	// Variants is how many machine variants one iteration simulates.
	Parallelism       int `json:"parallelism"`
	VariantsPerDecode int `json:"variants_per_decode"`
	Variants          int `json:"variants"`
	// WallNs and CPUNs are the per-iteration wall-clock and process CPU
	// time (getrusage): on a parallel sweep CPUNs/WallNs approaches the
	// worker count, on a single run they coincide.
	WallNs int64 `json:"wall_ns"`
	CPUNs  int64 `json:"cpu_ns"`
	// SimParallelism is the intra-run (PDES) goroutine count the config
	// requested (0/1 = sequential engine); PartitionEvents is the
	// deterministic per-partition event split of one run — one slot per
	// processor plus a final hub slot — present only when the windowed
	// engine actually engaged.
	SimParallelism  int      `json:"sim_parallelism"`
	PartitionEvents []uint64 `json:"partition_events,omitempty"`
}

type benchFile struct {
	Generated  string        `json:"generated"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"go_max_procs"`
	OpsPerProc int           `json:"ops_per_proc"`
	Results    []benchResult `json:"results"`
}

// run executes one simulation of config c with the given seed.
func run(c benchConfig, seed uint64) (*cgct.Result, error) {
	opts := c.Opts
	opts.OpsPerProc = opsPerProc
	opts.Seed = seed
	return cgct.Run(c.Benchmark, opts)
}

// measure times iters simulations of one configuration, counting
// allocations via MemStats deltas — the simulation is single-threaded and
// nothing else runs, so the deltas are exact, and a fixed iteration count
// (unlike testing.Benchmark's auto-scaling) keeps runs comparable.
//
// Trace generation is measured separately: one uncached Compile is timed
// for TraceGenNs, and every timed iteration's workload is prewarmed into
// the shared trace cache first, so NsPerOp / TraceOpsSec isolate the
// simulation core.
func measure(c benchConfig, iters int) (benchResult, error) {
	procs := c.Opts.Processors
	if procs == 0 {
		procs = 4
	}

	// Time one direct (cache-bypassing) compilation of the workload.
	genStart := time.Now()
	if _, err := trace.Compile(context.Background(), c.Benchmark, workload.Params{
		Processors: procs, OpsPerProc: opsPerProc, Seed: 1,
	}); err != nil {
		return benchResult{}, err
	}
	genNs := time.Since(genStart).Nanoseconds()

	// Warm-up: first run pays one-time costs (workload construction paths,
	// heap growth) that steady-state numbers should not include.
	res, err := run(c, 1)
	if err != nil {
		return benchResult{}, err
	}
	cycles := res.Cycles

	// Prewarm the trace cache for every seed the timed loop will use, so
	// the loop measures simulation, not generation.
	for i := 0; i < iters; i++ {
		if _, err := trace.Get(context.Background(), trace.Key{
			Benchmark: c.Benchmark, Processors: procs,
			OpsPerProc: opsPerProc, Seed: uint64(i + 1),
		}); err != nil {
			return benchResult{}, err
		}
	}

	hitsBefore := trace.SharedStats().Hits
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	cpuStart := cpuTime()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := run(c, uint64(i+1)); err != nil {
			return benchResult{}, err
		}
	}
	elapsed := time.Since(start)
	cpu := cpuTime() - cpuStart
	runtime.ReadMemStats(&after)
	hits := trace.SharedStats().Hits - hitsBefore

	var opsPerSec float64
	if elapsed > 0 {
		opsPerSec = float64(procs*opsPerProc*iters) / elapsed.Seconds()
	}
	return benchResult{
		Name:              c.Name,
		Benchmark:         c.Benchmark,
		CGCT:              c.Opts.CGCT,
		Processors:        procs,
		Runs:              iters,
		NsPerOp:           elapsed.Nanoseconds() / int64(iters),
		TraceOpsSec:       opsPerSec,
		AllocsPerOp:       int64((after.Mallocs - before.Mallocs) / uint64(iters)),
		BytesPerOp:        int64((after.TotalAlloc - before.TotalAlloc) / uint64(iters)),
		SimCycles:         cycles,
		TraceGenNs:        genNs,
		TraceCacheHits:    hits,
		Parallelism:       1,
		VariantsPerDecode: 1,
		Variants:          1,
		WallNs:            elapsed.Nanoseconds() / int64(iters),
		CPUNs:             cpu.Nanoseconds() / int64(iters),
		SimParallelism:    c.Opts.SimParallelism,
		PartitionEvents:   res.PartitionEvents,
	}, nil
}

// runSweep executes one full sweep over c.Variants: strictly
// sequentially (one Run per variant, each paying its own trace decode)
// when the scheduler settings are 1/1, through the batched multi-variant
// engine otherwise. Returns the summed simulated cycles (deterministic
// per config, so drift between the two paths would be visible).
func runSweep(c benchConfig, seed uint64) (uint64, error) {
	var cycles uint64
	if c.Parallelism <= 1 && c.VariantsPerDecode <= 1 {
		for _, o := range c.Variants {
			o.OpsPerProc, o.Seed = opsPerProc, seed
			res, err := cgct.Run(c.Benchmark, o)
			if err != nil {
				return 0, err
			}
			cycles += res.Cycles
		}
		return cycles, nil
	}
	reqs := make([]cgct.RunRequest, len(c.Variants))
	for i, o := range c.Variants {
		o.OpsPerProc, o.Seed = opsPerProc, seed
		reqs[i] = cgct.RunRequest{Benchmark: c.Benchmark, Options: o}
	}
	results, err := cgct.RunAll(context.Background(), reqs, cgct.Sched{
		Parallelism:       c.Parallelism,
		VariantsPerDecode: c.VariantsPerDecode,
	})
	if err != nil {
		return 0, err
	}
	for _, r := range results {
		cycles += r.Cycles
	}
	return cycles, nil
}

// measureSweep times iters multi-variant sweeps. Aggregate trace-ops/s
// counts every variant's replayed ops against the sweep's wall clock —
// the number the batched engine moves by sharing decodes and running
// variants in parallel.
func measureSweep(c benchConfig, iters int) (benchResult, error) {
	procs := c.Opts.Processors
	if procs == 0 {
		procs = 4
	}
	genStart := time.Now()
	if _, err := trace.Compile(context.Background(), c.Benchmark, workload.Params{
		Processors: procs, OpsPerProc: opsPerProc, Seed: 1,
	}); err != nil {
		return benchResult{}, err
	}
	genNs := time.Since(genStart).Nanoseconds()

	// Warm-up sweep (one-time costs) + trace-cache prewarm for every seed.
	cycles, err := runSweep(c, 1)
	if err != nil {
		return benchResult{}, err
	}
	for i := 0; i < iters; i++ {
		if _, err := trace.Get(context.Background(), trace.Key{
			Benchmark: c.Benchmark, Processors: procs,
			OpsPerProc: opsPerProc, Seed: uint64(i + 1),
		}); err != nil {
			return benchResult{}, err
		}
	}

	hitsBefore := trace.SharedStats().Hits
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	cpuStart := cpuTime()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := runSweep(c, uint64(i+1)); err != nil {
			return benchResult{}, err
		}
	}
	elapsed := time.Since(start)
	cpu := cpuTime() - cpuStart
	runtime.ReadMemStats(&after)
	hits := trace.SharedStats().Hits - hitsBefore

	var opsPerSec float64
	if elapsed > 0 {
		opsPerSec = float64(procs*opsPerProc*len(c.Variants)*iters) / elapsed.Seconds()
	}
	return benchResult{
		Name:              c.Name,
		Benchmark:         c.Benchmark,
		Processors:        procs,
		Runs:              iters,
		NsPerOp:           elapsed.Nanoseconds() / int64(iters),
		TraceOpsSec:       opsPerSec,
		AllocsPerOp:       int64((after.Mallocs - before.Mallocs) / uint64(iters)),
		BytesPerOp:        int64((after.TotalAlloc - before.TotalAlloc) / uint64(iters)),
		SimCycles:         cycles,
		TraceGenNs:        genNs,
		TraceCacheHits:    hits,
		Parallelism:       c.Parallelism,
		VariantsPerDecode: c.VariantsPerDecode,
		Variants:          len(c.Variants),
		WallNs:            elapsed.Nanoseconds() / int64(iters),
		CPUNs:             cpu.Nanoseconds() / int64(iters),
	}, nil
}

// compare prints per-config deltas against a previously written bench
// file. It is informational only — machine noise makes small swings
// meaningless — so it never fails the run. A baseline captured at a
// different go_max_procs ran with a different parallel budget, so its
// wall-clock-derived columns are not comparable: only allocation deltas
// are printed then.
func compare(baselinePath string, results []benchResult, goMaxProcs int) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgctbench: baseline unavailable: %v\n", err)
		return
	}
	base, err := loadBaseline(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgctbench: baseline unreadable: %v\n", err)
		return
	}
	wallClock := base.GoMaxProcs == 0 || base.GoMaxProcs == goMaxProcs
	fmt.Printf("\nvs %s:\n", baselinePath)
	if !wallClock {
		fmt.Printf("  (baseline ran at go_max_procs=%d, this host has %d: wall-clock deltas skipped)\n",
			base.GoMaxProcs, goMaxProcs)
	}
	for _, line := range compareLines(results, base.Results, wallClock) {
		fmt.Println(line)
	}
}

// loadBaseline parses a bench JSON schema-tolerantly: columns the
// baseline has that this binary doesn't know are ignored, and columns
// this binary expects that the baseline predates decode to zeros (which
// compareLines already renders as "(no baseline)" rather than NaN%). A
// baseline written by an older or newer cgctbench therefore never breaks
// the bench-compare job — only actually malformed JSON errors.
func loadBaseline(data []byte) (benchFile, error) {
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return benchFile{}, err
	}
	return base, nil
}

// compareLines renders one delta line per result against the baseline by
// config name. Pure (no I/O) so the formatting is unit-testable. A config
// missing from the baseline — or one whose baseline throughput is zero or
// otherwise yields a non-finite delta (a partial or zero-valued baseline
// file) — reports "(no baseline)"; the output never contains NaN% or Inf%.
// With wallClock false (the baseline's go_max_procs differs) only the
// allocation delta — a machine-shape-independent number — is printed.
func compareLines(results, baseline []benchResult, wallClock bool) []string {
	byName := map[string]benchResult{}
	for _, r := range baseline {
		byName[r.Name] = r
	}
	lines := make([]string, 0, len(results))
	for _, r := range results {
		b, ok := byName[r.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-18s (no baseline)", r.Name))
			continue
		}
		if !wallClock {
			lines = append(lines, fmt.Sprintf("  %-18s allocs/op %+d", r.Name, r.AllocsPerOp-b.AllocsPerOp))
			continue
		}
		pct := 100 * (r.TraceOpsSec/b.TraceOpsSec - 1)
		if math.IsNaN(pct) || math.IsInf(pct, 0) {
			lines = append(lines, fmt.Sprintf("  %-18s (no baseline)", r.Name))
			continue
		}
		lines = append(lines, fmt.Sprintf("  %-18s trace-ops/s %+7.1f%%   allocs/op %+d",
			r.Name, pct, r.AllocsPerOp-b.AllocsPerOp))
	}
	return lines
}

func main() {
	var (
		out       = flag.String("out", "BENCH_simcore.json", "output JSON path (- for stdout)")
		config    = flag.String("config", "", "run only this config (default: all; see -list)")
		list      = flag.Bool("list", false, "list configs and exit")
		benchtime = flag.Int("benchtime", 3, "iterations per config")
		baseline  = flag.String("baseline", "", "bench JSON to print deltas against (informational, never fails)")
	)
	flag.Parse()

	if *list {
		for _, c := range configs() {
			fmt.Println(c.Name)
		}
		return
	}

	file := benchFile{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		OpsPerProc: opsPerProc,
	}
	for _, c := range configs() {
		if *config != "" && c.Name != *config {
			continue
		}
		var res benchResult
		var err error
		if len(c.Variants) > 0 {
			res, err = measureSweep(c, *benchtime)
		} else {
			res, err = measure(c, *benchtime)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgctbench %s: %v\n", c.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-20s %12.0f trace-ops/s  %8d allocs/op  %11d ns/op  (par %d, vpd %d, simpar %d, cpu/wall %.2f)\n",
			res.Name, res.TraceOpsSec, res.AllocsPerOp, res.NsPerOp,
			res.Parallelism, res.VariantsPerDecode, res.SimParallelism, float64(res.CPUNs)/float64(res.WallNs))
		file.Results = append(file.Results, res)
	}
	if len(file.Results) == 0 {
		fmt.Fprintf(os.Stderr, "cgctbench: no config named %q (see -list)\n", *config)
		os.Exit(2)
	}

	if *baseline != "" {
		compare(*baseline, file.Results, file.GoMaxProcs)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
