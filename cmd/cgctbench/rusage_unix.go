//go:build unix

package main

import (
	"syscall"
	"time"
)

// cpuTime returns the process's cumulative user+system CPU time. On a
// parallel sweep CPU time keeps counting on every worker while the wall
// clock doesn't — the cpu_ns/wall_ns ratio is the realised parallelism.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
