//go:build !unix

package main

import "time"

// cpuTime is unavailable off unix; cpu_ns reports 0 rather than guessing.
func cpuTime() time.Duration { return 0 }
