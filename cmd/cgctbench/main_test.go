package main

import (
	"math"
	"strings"
	"testing"
)

// TestCompareLinesZeroBaseline is the divide-by-zero regression test: a
// zero-valued or partial baseline file must render as "(no baseline)",
// never as a NaN% or Inf% delta.
func TestCompareLinesZeroBaseline(t *testing.T) {
	results := []benchResult{
		{Name: "cgct-ocean", TraceOpsSec: 1_000_000, AllocsPerOp: 12},
		{Name: "cgct-tpcw", TraceOpsSec: 900_000},
		{Name: "zeroed", TraceOpsSec: 0},
	}
	baseline := []benchResult{
		{Name: "cgct-ocean", TraceOpsSec: 0}, // zero-valued entry
		{Name: "zeroed", TraceOpsSec: 0},     // 0/0 would be NaN
		// "cgct-tpcw" absent entirely
	}
	lines := compareLines(results, baseline)
	if len(lines) != len(results) {
		t.Fatalf("got %d lines for %d results", len(lines), len(results))
	}
	for _, line := range lines {
		if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
			t.Errorf("delta line leaks a non-finite value: %q", line)
		}
		if !strings.Contains(line, "(no baseline)") {
			t.Errorf("want \"(no baseline)\" marker, got %q", line)
		}
	}
}

// TestCompareLinesDelta checks the normal path: finite percentage and
// alloc deltas against a usable baseline.
func TestCompareLinesDelta(t *testing.T) {
	results := []benchResult{{Name: "cgct-ocean", TraceOpsSec: 150, AllocsPerOp: 10}}
	baseline := []benchResult{{Name: "cgct-ocean", TraceOpsSec: 100, AllocsPerOp: 13}}
	lines := compareLines(results, baseline)
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "+50.0%") || !strings.Contains(lines[0], "allocs/op -3") {
		t.Errorf("unexpected delta line: %q", lines[0])
	}
}

// TestCompareLinesNaNResult: even a corrupt current measurement must not
// leak NaN into the report.
func TestCompareLinesNaNResult(t *testing.T) {
	results := []benchResult{{Name: "x", TraceOpsSec: math.NaN()}}
	baseline := []benchResult{{Name: "x", TraceOpsSec: 100}}
	lines := compareLines(results, baseline)
	if len(lines) != 1 || !strings.Contains(lines[0], "(no baseline)") {
		t.Fatalf("NaN measurement not suppressed: %v", lines)
	}
}
