package main

import (
	"math"
	"strings"
	"testing"
)

// TestCompareLinesZeroBaseline is the divide-by-zero regression test: a
// zero-valued or partial baseline file must render as "(no baseline)",
// never as a NaN% or Inf% delta.
func TestCompareLinesZeroBaseline(t *testing.T) {
	results := []benchResult{
		{Name: "cgct-ocean", TraceOpsSec: 1_000_000, AllocsPerOp: 12},
		{Name: "cgct-tpcw", TraceOpsSec: 900_000},
		{Name: "zeroed", TraceOpsSec: 0},
	}
	baseline := []benchResult{
		{Name: "cgct-ocean", TraceOpsSec: 0}, // zero-valued entry
		{Name: "zeroed", TraceOpsSec: 0},     // 0/0 would be NaN
		// "cgct-tpcw" absent entirely
	}
	lines := compareLines(results, baseline, true)
	if len(lines) != len(results) {
		t.Fatalf("got %d lines for %d results", len(lines), len(results))
	}
	for _, line := range lines {
		if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
			t.Errorf("delta line leaks a non-finite value: %q", line)
		}
		if !strings.Contains(line, "(no baseline)") {
			t.Errorf("want \"(no baseline)\" marker, got %q", line)
		}
	}
}

// TestCompareLinesDelta checks the normal path: finite percentage and
// alloc deltas against a usable baseline.
func TestCompareLinesDelta(t *testing.T) {
	results := []benchResult{{Name: "cgct-ocean", TraceOpsSec: 150, AllocsPerOp: 10}}
	baseline := []benchResult{{Name: "cgct-ocean", TraceOpsSec: 100, AllocsPerOp: 13}}
	lines := compareLines(results, baseline, true)
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "+50.0%") || !strings.Contains(lines[0], "allocs/op -3") {
		t.Errorf("unexpected delta line: %q", lines[0])
	}
}

// TestCompareLinesNaNResult: even a corrupt current measurement must not
// leak NaN into the report.
func TestCompareLinesNaNResult(t *testing.T) {
	results := []benchResult{{Name: "x", TraceOpsSec: math.NaN()}}
	baseline := []benchResult{{Name: "x", TraceOpsSec: 100}}
	lines := compareLines(results, baseline, true)
	if len(lines) != 1 || !strings.Contains(lines[0], "(no baseline)") {
		t.Fatalf("NaN measurement not suppressed: %v", lines)
	}
}

// TestBaselineSchemaTolerance: -baseline must keep working across bench
// schema changes in either direction — a baseline from an older cgctbench
// (missing today's columns) and one from a newer cgctbench (columns this
// binary has never heard of) both load and compare without error or
// non-finite output.
func TestBaselineSchemaTolerance(t *testing.T) {
	results := []benchResult{
		{Name: "cgct-ocean", TraceOpsSec: 150, AllocsPerOp: 10},
		{Name: "sweep4-ocean-batched", TraceOpsSec: 600, Parallelism: 4, VariantsPerDecode: 4},
	}
	cases := map[string]struct {
		json      string
		wantDelta bool // the cgct-ocean line carries a finite % delta
	}{
		"old schema, missing new columns": {
			json: `{"generated":"2025-01-01T00:00:00Z","num_cpu":1,"results":[
				{"name":"cgct-ocean","trace_ops_per_sec":100,"allocs_per_op":13}]}`,
			wantDelta: true,
		},
		"future schema, unknown columns": {
			json: `{"generated":"2027-01-01T00:00:00Z","quantum_cores":9,"results":[
				{"name":"cgct-ocean","trace_ops_per_sec":100,"allocs_per_op":13,"warp_factor":7},
				{"name":"sweep4-ocean-batched","trace_ops_per_sec":300,"parallelism":8}]}`,
			wantDelta: true,
		},
		"empty results": {
			json:      `{"generated":"x"}`,
			wantDelta: false,
		},
	}
	for name, tc := range cases {
		base, err := loadBaseline([]byte(tc.json))
		if err != nil {
			t.Fatalf("%s: loadBaseline: %v", name, err)
		}
		lines := compareLines(results, base.Results, true)
		if len(lines) != len(results) {
			t.Fatalf("%s: got %d lines for %d results", name, len(lines), len(results))
		}
		for _, line := range lines {
			if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
				t.Errorf("%s: non-finite delta leaked: %q", name, line)
			}
		}
		hasDelta := strings.Contains(lines[0], "+50.0%")
		if hasDelta != tc.wantDelta {
			t.Errorf("%s: cgct-ocean delta present=%v, want %v (%q)", name, hasDelta, tc.wantDelta, lines[0])
		}
	}
	if _, err := loadBaseline([]byte(`{"results": [`)); err == nil {
		t.Error("malformed JSON did not error")
	}
}

// TestCompareLinesSkipsWallClockAcrossHosts: a baseline captured at a
// different go_max_procs ran with a different parallel budget, so the
// wall-clock-derived trace-ops/s delta is withheld and only the
// machine-shape-independent allocation delta prints.
func TestCompareLinesSkipsWallClockAcrossHosts(t *testing.T) {
	results := []benchResult{{Name: "pdes-ocean", TraceOpsSec: 150, AllocsPerOp: 10}}
	baseline := []benchResult{{Name: "pdes-ocean", TraceOpsSec: 100, AllocsPerOp: 13}}
	lines := compareLines(results, baseline, false)
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	if strings.Contains(lines[0], "trace-ops/s") || strings.Contains(lines[0], "%") {
		t.Errorf("wall-clock delta leaked across host shapes: %q", lines[0])
	}
	if !strings.Contains(lines[0], "allocs/op -3") {
		t.Errorf("allocation delta missing: %q", lines[0])
	}
}
