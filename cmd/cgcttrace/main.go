// Command cgcttrace generates and inspects the synthetic memory traces
// that drive the simulator.
//
// Usage:
//
//	cgcttrace -benchmark ocean -proc 0 -n 50            # dump first 50 ops
//	cgcttrace -benchmark tpc-h -summary                 # per-kind histogram
//	cgcttrace -benchmark tpc-b -compile tpcb.cgct       # compiled columnar trace
//	cgcttrace -info tpcb.cgct                           # inspect a compiled trace
package main

import (
	"flag"
	"fmt"
	"os"

	"cgct"
	"cgct/internal/addr"
	"cgct/internal/trace"
	"cgct/internal/workload"
)

func main() {
	var (
		bench   = flag.String("benchmark", "ocean", "workload")
		proc    = flag.Int("proc", 0, "processor whose trace to inspect")
		n       = flag.Int("n", 30, "operations to dump")
		ops     = flag.Int("ops", 100_000, "trace length per processor")
		procs   = flag.Int("procs", 4, "processor count")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		summary = flag.Bool("summary", false, "print per-kind and per-region summary instead of a dump")
		save    = flag.String("save", "", "write the full trace to this file (legacy fixed-width format) and exit")
		compile = flag.String("compile", "", "compile the workload to this file (columnar compiled-trace format) and exit")
		info    = flag.String("info", "", "print a compiled-trace file's summary and exit")
	)
	flag.Parse()

	if *info != "" {
		tr, err := trace.ReadFile(*info)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(tr)
		return
	}

	if *compile != "" {
		err := cgct.CompileTrace(*bench, *compile, cgct.Options{
			Processors: *procs, OpsPerProc: *ops, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err := trace.ReadFile(*compile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("compiled %s\n", tr)
		return
	}

	if *save != "" {
		err := cgct.SaveTrace(*bench, *save, cgct.Options{
			Processors: *procs, OpsPerProc: *ops, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved %s trace (%d ops x %d processors) to %s\n", *bench, *ops, *procs, *save)
		return
	}

	w, err := workload.Build(*bench, workload.Params{
		Processors: *procs,
		OpsPerProc: *ops,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *proc < 0 || *proc >= len(w.Generators) {
		fmt.Fprintf(os.Stderr, "processor %d out of range\n", *proc)
		os.Exit(1)
	}
	gen := w.Generators[*proc]

	if !*summary {
		for i := 0; i < *n; i++ {
			op, ok := gen.Next()
			if !ok {
				break
			}
			fmt.Printf("%6d  %-6s %v gap=%d\n", i, op.Kind, op.Addr, op.Gap)
		}
		return
	}

	geom := addr.MustGeometry(64, 512)
	var kinds [workload.NOpKinds]uint64
	var gaps uint64
	regions := map[addr.RegionAddr]uint64{}
	total := 0
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		kinds[op.Kind]++
		gaps += uint64(op.Gap)
		regions[geom.Region(op.Addr)]++
		total++
	}
	fmt.Printf("benchmark %s, processor %d: %d operations\n", *bench, *proc, total)
	for k := workload.OpKind(0); k < workload.NOpKinds; k++ {
		fmt.Printf("  %-8s %8d (%.1f%%)\n", k, kinds[k], 100*float64(kinds[k])/float64(total))
	}
	fmt.Printf("  mean gap: %.1f instructions\n", float64(gaps)/float64(total))
	fmt.Printf("  distinct 512B regions touched: %d (%.1f ops per region)\n",
		len(regions), float64(total)/float64(len(regions)))
}
