// Command cgctserve exposes the CGCT simulator as an HTTP/JSON service:
// simulation and experiment jobs flow through a bounded admission queue
// into a bounded worker pool, backed by a content-addressed result cache
// with singleflight deduplication.
//
// Usage:
//
//	cgctserve -addr :8080 -workers 8 -queue 64 -cache 1024
//	cgctserve -smoke            # self-test: serve, submit, verify, drain
//
// API (see README "Running the server" for curl examples):
//
//	POST   /v1/jobs            submit {"benchmark":"tpc-w","options":{...}}
//	GET    /v1/jobs/{id}       job state, queue position, timings
//	GET    /v1/jobs/{id}/result  full stats JSON
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/metrics         queue/worker/cache/latency metrics
//	GET    /v1/healthz         liveness (503 while draining)
//
// On SIGTERM/SIGINT the server stops admitting work (503), drains running
// jobs up to -drain, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof listener's mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"cgct"
	"cgct/internal/server"
	"cgct/internal/server/client"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "admission queue capacity (overflow gets 429)")
		cache   = flag.Int("cache", 1024, "result cache capacity, entries (LRU)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		timeout = flag.Duration("job-timeout", 30*time.Minute, "per-job wall-clock deadline (0 = none; requests may set a shorter timeout_ms)")
		stall   = flag.Duration("watchdog", 2*time.Minute, "fail a running job whose simulation makes no progress for this long (0 = disabled)")
		smoke   = flag.Bool("smoke", false, "serve on a loopback port, run a client round trip, and exit")
		pprofAt = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	)
	flag.Parse()

	if *pprofAt != "" {
		// A separate listener keeps the profiling endpoints off the public
		// API surface; the blank net/http/pprof import registered them on
		// http.DefaultServeMux.
		go func() {
			if err := http.ListenAndServe(*pprofAt, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}

	opts := server.Options{
		Workers: *workers, QueueCapacity: *queue, CacheEntries: *cache,
		DefaultTimeout: *timeout, WatchdogStall: *stall,
	}
	if *smoke {
		if err := runSmoke(opts, *drain); err != nil {
			fmt.Fprintf(os.Stderr, "smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("smoke: ok")
		return
	}
	if err := serve(*addr, opts, *drain); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// serve runs the server until SIGTERM/SIGINT, then drains and exits.
func serve(addr string, opts server.Options, drainTimeout time.Duration) error {
	s := server.New(opts)
	hs := &http.Server{Addr: addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	fmt.Printf("cgctserve: listening on %s (%d workers, queue %d, cache %d)\n",
		addr, s.Manager().Metrics().Workers, opts.QueueCapacity, opts.CacheEntries)

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "cgctserve: signal received, draining (deadline %s)\n", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := s.Manager().Drain(dctx)              // reject new work, finish running jobs
	shutdownErr := hs.Shutdown(context.Background()) // then close the listener
	if drainErr != nil {
		return fmt.Errorf("drain: running jobs force-cancelled after %s: %w", drainTimeout, drainErr)
	}
	return shutdownErr
}

// runSmoke is the end-to-end self-test: start on a loopback port, push a
// tiny job through the whole lifecycle with the Go client, verify the
// cache dedupes a resubmission, and drain.
func runSmoke(opts server.Options, drainTimeout time.Duration) error {
	s := server.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	base := "http://" + ln.Addr().String()
	c := client.New(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fmt.Printf("smoke: serving on %s\n", base)

	if !c.Healthy(ctx) {
		return errors.New("healthz failed")
	}
	req := server.JobRequest{Benchmark: "ocean", Options: cgct.Options{OpsPerProc: 20_000}}
	st, err := c.Submit(ctx, req)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("smoke: job %s submitted\n", st.ID)
	if st, err = c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if st.State != server.StateDone {
		return fmt.Errorf("job ended %q: %s", st.State, st.Error)
	}
	var res cgct.Result
	if _, err := c.Result(ctx, st.ID, &res); err != nil {
		return fmt.Errorf("result: %w", err)
	}
	fmt.Printf("smoke: %s done in %d ms: %d cycles, %d requests\n", st.ID, st.ElapsedMs, res.Cycles, res.Requests)

	// Resubmit the identical config: must be served from the cache.
	st2, err := c.Submit(ctx, req)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if st2, err = c.Wait(ctx, st2.ID, 10*time.Millisecond); err != nil {
		return fmt.Errorf("wait 2: %w", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if !st2.CacheHit || m.Cache.Misses != 1 {
		return fmt.Errorf("resubmission not deduped: cache_hit=%t misses=%d", st2.CacheHit, m.Cache.Misses)
	}
	fmt.Printf("smoke: resubmission served from cache (hit rate %.2f, p50 %.0f ms)\n", m.CacheHitRate, m.LatencyMsP50)

	dctx, dcancel := context.WithTimeout(context.Background(), drainTimeout)
	defer dcancel()
	if err := s.Manager().Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
