// Command cgctserve exposes the CGCT simulator as an HTTP/JSON service:
// simulation and experiment jobs flow through a bounded admission queue
// into a bounded worker pool, backed by a content-addressed result cache
// with singleflight deduplication.
//
// Usage:
//
//	cgctserve -addr :8080 -workers 8 -queue 64 -cache 1024
//	cgctserve -store /var/lib/cgct   # crash-safe result/trace spill; warm restarts
//	cgctserve -store /var/lib/cgct -store-max-bytes 10737418240 -scrub-interval 5s
//	cgctserve -self http://a:8080 -peers http://a:8080,http://b:8080 -replication 2
//	cgctserve -self http://d:8080 -join http://a:8080   # join a running fleet
//	cgctserve -smoke            # self-test: serve, submit, verify, drain
//
// API (see README "Running the server" for curl examples):
//
//	POST   /v1/jobs            submit {"benchmark":"tpc-w","options":{...}}
//	GET    /v1/jobs/{id}       job state, queue position, timings
//	GET    /v1/jobs/{id}/result  full stats JSON
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/results/{key}   result bytes by content address (peer fetching)
//	GET    /v1/cluster         fleet membership, health and fetch stats
//	GET    /v1/metrics         queue/worker/cache/latency metrics
//	GET    /v1/healthz         liveness (503 while draining)
//
// On SIGTERM/SIGINT the server stops admitting work (503), drains running
// jobs up to -drain — flushing the persistent store so the next boot
// warm-starts — then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof listener's mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cgct"
	"cgct/internal/cluster"
	"cgct/internal/server"
	"cgct/internal/server/client"
	"cgct/internal/store"
	"cgct/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "admission queue capacity (overflow gets 429)")
		cache    = flag.Int("cache", 1024, "result cache capacity, entries (LRU)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
		timeout  = flag.Duration("job-timeout", 30*time.Minute, "per-job wall-clock deadline (0 = none; requests may set a shorter timeout_ms)")
		stall    = flag.Duration("watchdog", 2*time.Minute, "fail a running job whose simulation makes no progress for this long (0 = disabled)")
		smoke    = flag.Bool("smoke", false, "serve on a loopback port, run a client round trip, and exit")
		pprofAt  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		traceOut = flag.String("trace-out", "", "write completed jobs' phase spans as chrome://tracing JSON to this path on shutdown")
		logFmt   = flag.String("log-format", "text", "structured log encoding on stderr: text or json")
		storeDir  = flag.String("store", "", "persistent store directory: results and compiled traces spill here crash-safely and restarts warm-start from it (empty = no persistence)")
		storeMax  = flag.Int64("store-max-bytes", 0, "byte cap on the persistent store; least-recently-used entries are evicted past it (0 = unlimited)")
		scrubBeat = flag.Duration("scrub-interval", 0, "re-verify one store entry's integrity per interval, quarantining corruption and restoring it from replicas (0 = disabled)")
		peersStr  = flag.String("peers", "", "comma-separated cluster peer base URLs (http://host:port); empty = standalone")
		selfURL   = flag.String("self", "", "this node's advertised base URL, required with -peers or -join")
		joinSeed  = flag.String("join", "", "base URL of a running fleet member to join through (membership then spreads by gossip)")
		replicas  = flag.Int("replication", 1, "replicate each result to this many ring owners (1 = owner only)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *pprofAt != "" {
		// A separate listener keeps the profiling endpoints off the public
		// API surface; the blank net/http/pprof import registered them on
		// http.DefaultServeMux.
		go func() {
			if err := http.ListenAndServe(*pprofAt, nil); err != nil {
				logger.Error("pprof listener failed", "addr", *pprofAt, "error", err.Error())
			}
		}()
	}

	opts := server.Options{
		Workers: *workers, QueueCapacity: *queue, CacheEntries: *cache,
		DefaultTimeout: *timeout, WatchdogStall: *stall, Logger: logger,
	}
	if *storeDir != "" {
		st, err := store.Open(store.Options{
			Dir: *storeDir, MaxBytes: *storeMax, ScrubInterval: *scrubBeat, Logger: logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgctserve: %v\n", err)
			os.Exit(2)
		}
		opts.Store = st
		// Compiled traces spill into the same store, so a warm restart
		// skips trace compilation as well as simulation.
		trace.SetPersistentStore(st)
		logger.Info("persistent store open",
			"dir", st.Dir(), "max_bytes", *storeMax, "scrub_interval", scrubBeat.String())
	}
	if *peersStr != "" || *joinSeed != "" {
		cl, err := buildCluster(*selfURL, *peersStr, *replicas, logger)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgctserve: %v\n", err)
			os.Exit(2)
		}
		if *joinSeed != "" {
			// Best-effort: a seed that is down must not keep the node from
			// serving — the probe-time gossip retries membership later.
			jctx, jcancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := cl.Join(jctx, *joinSeed); err != nil {
				logger.Warn("join failed, serving standalone until gossip finds the fleet",
					"seed", *joinSeed, "error", err.Error())
			}
			jcancel()
		}
		opts.Cluster = cl
		logger.Info("clustered",
			"self", cl.Self(), "members", len(cl.Members()), "replication", *replicas)
	}
	if *smoke {
		if err := runSmoke(opts, *drain, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("smoke: ok")
		return
	}
	if err := serve(*addr, opts, *drain, *traceOut, logger); err != nil {
		logger.Error("server exited", "error", err.Error())
		os.Exit(1)
	}
}

// buildCluster validates -self/-peers and assembles the routing layer.
// Both go through the same normaliser, so a URL that would misroute
// fetches (path, query, userinfo) dies here at startup, not quietly in
// production.
func buildCluster(self, peers string, replication int, logger *slog.Logger) (*cluster.Cluster, error) {
	if self == "" {
		return nil, errors.New("-peers/-join require -self (this node's advertised base URL)")
	}
	peerList, err := cluster.ParsePeers(peers)
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{
		Self: self, Peers: peerList, Replication: replication, Logger: logger,
	})
}

// buildLogger constructs the process logger: structured slog on stderr in
// the requested encoding.
func buildLogger(format string) (*slog.Logger, error) {
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("cgctserve: unknown -log-format %q (want text or json)", format)
	}
}

// writeTraceOut dumps the manager's completed-job phase spans as
// chrome://tracing JSON. Called after drain, so every retained job is
// terminal and its span record final.
func writeTraceOut(m *server.Manager, path string, logger *slog.Logger) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		logger.Error("trace-out: create failed", "path", path, "error", err.Error())
		return
	}
	err = m.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		logger.Error("trace-out: write failed", "path", path, "error", err.Error())
		return
	}
	logger.Info("trace-out written", "path", path)
}

// serve runs the server until SIGTERM/SIGINT, then drains and exits.
func serve(addr string, opts server.Options, drainTimeout time.Duration, traceOut string, logger *slog.Logger) error {
	s := server.New(opts)
	hs := &http.Server{Addr: addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	logger.Info("listening",
		"addr", addr, "workers", s.Manager().Metrics().Workers,
		"queue", opts.QueueCapacity, "cache", opts.CacheEntries)

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	logger.Info("signal received, draining", "deadline", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := s.Manager().Drain(dctx)              // reject new work, finish running jobs
	shutdownErr := hs.Shutdown(context.Background()) // then close the listener
	writeTraceOut(s.Manager(), traceOut, logger)
	if drainErr != nil {
		return fmt.Errorf("drain: running jobs force-cancelled after %s: %w", drainTimeout, drainErr)
	}
	return shutdownErr
}

// runSmoke is the end-to-end self-test: start on a loopback port, push a
// tiny job through the whole lifecycle with the Go client, verify the
// cache dedupes a resubmission and the Prometheus exposition is live,
// check the job's phase breakdown, and drain (writing -trace-out if set).
func runSmoke(opts server.Options, drainTimeout time.Duration, traceOut string) error {
	s := server.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	base := "http://" + ln.Addr().String()
	c := client.New(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fmt.Printf("smoke: serving on %s\n", base)

	if !c.Healthy(ctx) {
		return errors.New("healthz failed")
	}
	req := server.JobRequest{Benchmark: "ocean", Options: cgct.Options{OpsPerProc: 20_000}}
	st, err := c.Submit(ctx, req)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("smoke: job %s submitted\n", st.ID)
	if st, err = c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if st.State != server.StateDone {
		return fmt.Errorf("job ended %q: %s", st.State, st.Error)
	}
	var res cgct.Result
	if _, err := c.Result(ctx, st.ID, &res); err != nil {
		return fmt.Errorf("result: %w", err)
	}
	fmt.Printf("smoke: %s done in %d ms: %d cycles, %d requests\n", st.ID, st.ElapsedMs, res.Cycles, res.Requests)

	// Resubmit the identical config: must be served from the cache.
	st2, err := c.Submit(ctx, req)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if st2, err = c.Wait(ctx, st2.ID, 10*time.Millisecond); err != nil {
		return fmt.Errorf("wait 2: %w", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if !st2.CacheHit || m.Cache.Misses != 1 {
		return fmt.Errorf("resubmission not deduped: cache_hit=%t misses=%d", st2.CacheHit, m.Cache.Misses)
	}
	fmt.Printf("smoke: resubmission served from cache (hit rate %.2f, p50 %.0f ms)\n", m.CacheHitRate, m.LatencyMsP50)

	// The leader job must carry the phase breakdown of its run.
	if len(st.Phases) == 0 {
		return errors.New("job status has no phase spans")
	}
	for _, p := range st.Phases {
		fmt.Printf("smoke: phase %-13s %8.2f ms\n", p.Name, p.DurationMs)
	}

	// Prometheus exposition must be live and agree with the JSON snapshot.
	text, err := c.PrometheusMetrics(ctx)
	if err != nil {
		return fmt.Errorf("prometheus metrics: %w", err)
	}
	want := fmt.Sprintf("cgct_jobs_submitted_total %d", m.JobsSubmitted)
	if !strings.Contains(text, want) {
		return fmt.Errorf("/metrics missing %q", want)
	}
	fmt.Println("smoke: /metrics exposition agrees with /v1/metrics")

	dctx, dcancel := context.WithTimeout(context.Background(), drainTimeout)
	defer dcancel()
	if err := s.Manager().Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	writeTraceOut(s.Manager(), traceOut, slog.Default())
	return nil
}
