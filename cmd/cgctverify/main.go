// Command cgctverify hammers the coherence protocols with randomised
// high-contention workloads under every checker the simulator has: route
// safety (no request skips the broadcast while a remote copy exists),
// region exclusivity, MOESI single-writer, directory agreement, and the
// data-version checker (no processor ever reads a stale copy). Any
// violation panics with a diagnostic.
//
// Usage:
//
//	cgctverify -duration 30s
//	cgctverify -duration 5m -procs 8 -seed 42
package main

import (
	"flag"
	"fmt"
	"time"

	"cgct/internal/addr"
	"cgct/internal/config"
	"cgct/internal/rng"
	"cgct/internal/sim"
	"cgct/internal/workload"
)

func main() {
	var (
		duration = flag.Duration("duration", 30*time.Second, "how long to verify")
		procs    = flag.Int("procs", 4, "processor count")
		seed     = flag.Uint64("seed", 1, "starting seed")
		ops      = flag.Int("ops", 4_000, "trace length per processor per iteration")
	)
	flag.Parse()

	deadline := time.Now().Add(*duration)
	iter := 0
	var runs, requests uint64
	for time.Now().Before(deadline) {
		s := *seed + uint64(iter)
		iter++
		master := rng.New(s)

		// Random hot-set size: tiny pools maximise protocol races.
		hotRegions := 2 + master.Intn(8)
		gens := make([]workload.Generator, *procs)
		for p := range gens {
			pr := master.Split()
			opsSlice := make([]workload.Op, *ops)
			for i := range opsSlice {
				var a uint64
				if pr.Bool(0.75) {
					a = 0x400000 + pr.Uint64n(uint64(hotRegions)*512)
				} else {
					a = 0x500000 + pr.Uint64n(1<<17)
				}
				kind := workload.OpLoad
				switch pr.Uint64n(12) {
				case 0, 1, 2:
					kind = workload.OpStore
				case 3:
					kind = workload.OpDCBZ
				case 4:
					kind = workload.OpDCBF
				}
				opsSlice[i] = workload.Op{Kind: kind, Addr: addr.Addr(a &^ 63), Gap: uint32(pr.Uint64n(24))}
			}
			gens[p] = &workload.SliceGenerator{Ops: opsSlice}
		}
		w := workload.Workload{Name: "verify", Generators: gens}

		// Cycle through the protocol configurations.
		cfgs := []config.Config{
			config.Default(),
			config.Default().WithCGCT(256),
			config.Default().WithCGCT(512),
			config.Default().WithCGCT(1024),
			config.Default().WithRegionScout(512),
		}
		cfgs = append(cfgs,
			config.Default().WithDirectory(config.DirectoryParams{}),
			config.Default().WithDirectory(config.DirectoryParams{
				Scheme: config.DirSchemeLimited, Pointers: 2, MaxEntriesPerHome: 1024,
			}),
			config.Default().WithCGCT(512).WithDirectory(config.DirectoryParams{}),
		)
		scaled := config.Default().WithCGCT(512)
		scaled.RCA.ThreeState = true
		cfgs = append(cfgs, scaled)
		shared := config.Default().WithCGCT(512)
		shared.RCA.ReadSharedDirect = true
		cfgs = append(cfgs, shared)
		sectored := config.Default().WithCGCT(512)
		sectored.L2SectorBytes = 512
		cfgs = append(cfgs, sectored)

		for ci := range cfgs {
			cfg := cfgs[ci]
			cfg.Topology.Processors = *procs
			if cfg.CGCTEnabled {
				// Randomly shrink the RCA to force region evictions.
				cfg.RCA.Sets = []uint64{8, 64, 8192}[master.Intn(3)]
			}
			// Fresh generators per configuration (SliceGenerator is stateful).
			fresh := make([]workload.Generator, *procs)
			for p := range fresh {
				fresh[p] = &workload.SliceGenerator{Ops: gens[p].(*workload.SliceGenerator).Ops}
			}
			system := sim.MustNew(cfg, workload.Workload{Name: w.Name, Generators: fresh}, s)
			system.DebugChecks = true
			// The verifier wants a crash with a stack trace, not a polite
			// error return: keep the panic-on-violation behaviour.
			system.PanicOnViolation = true
			run := system.Run()
			runs++
			requests += run.TotalRequests()
		}
		if iter%10 == 0 {
			fmt.Printf("iteration %d: %d runs, %d requests verified\n", iter, runs, requests)
		}
	}
	fmt.Printf("OK: %d iterations, %d runs, %d fabric requests — no invariant violations\n",
		iter, runs, requests)
}
