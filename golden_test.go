package cgct

// Golden determinism tests: the simulated results for a fixed (benchmark,
// config, seed) are part of the engine's contract. The fixtures in
// testdata/golden_runs.json were captured from the original closure-per-
// event binary-heap engine; any event-queue or hot-path optimisation must
// reproduce every stats.Run counter bit-for-bit. Regenerate (only when a
// change is *supposed* to alter simulated results, e.g. a timing-model fix)
// with:
//
//	go test -run TestGoldenRuns -update-golden

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cgct/internal/sim"
	"cgct/internal/stats"
	"cgct/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_runs.json from the current engine")

// goldenCase is one pinned configuration. Ocean and tpc-w cover the two
// workload families; each runs baseline and CGCT so both the broadcast and
// the direct/local routing paths are pinned.
type goldenCase struct {
	Name      string
	Benchmark string
	Opts      Options
}

func goldenCases() []goldenCase {
	const ops = 60_000
	const seed = 7
	return []goldenCase{
		{"ocean-baseline", "ocean", Options{OpsPerProc: ops, Seed: seed}},
		{"ocean-cgct", "ocean", Options{OpsPerProc: ops, Seed: seed, CGCT: true}},
		{"tpcw-baseline", "tpc-w", Options{OpsPerProc: ops, Seed: seed}},
		{"tpcw-cgct", "tpc-w", Options{OpsPerProc: ops, Seed: seed, CGCT: true}},
		{"tpcw-cgct-perturb", "tpc-w", Options{OpsPerProc: ops, Seed: seed, CGCT: true, PerturbCycles: 40}},
		{"ocean-directory", "ocean", Options{OpsPerProc: ops, Seed: seed, Directory: true}},
		{"ocean-dir-cgct", "ocean", Options{OpsPerProc: ops, Seed: seed, CGCT: true, Fabric: "directory"}},
		{"tpcw-dir-limited", "tpc-w", Options{OpsPerProc: ops, Seed: seed, Directory: true,
			DirScheme: "limited", DirPointers: 2, DirEntriesPerHome: 2048}},
		{"tpcw-scout-dma", "tpc-w", Options{OpsPerProc: ops, Seed: seed, RegionScout: true, DMAIntervalCycles: 3000}},
	}
}

// runStats executes one golden case and returns the raw counters.
func runStats(t *testing.T, c goldenCase) *stats.Run {
	t.Helper()
	cfg, o := buildConfig(c.Opts)
	w, err := workload.Build(c.Benchmark, workload.Params{
		Processors: o.Processors,
		OpsPerProc: o.OpsPerProc,
		Seed:       o.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	system, err := sim.New(cfg, w, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return system.Run()
}

// flatten renders every exported counter of a stats.Run into a flat
// name → value map, so golden mismatches name the exact counter.
func flatten(r *stats.Run) map[string]uint64 {
	out := make(map[string]uint64)
	v := reflect.ValueOf(*r)
	tp := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := tp.Field(i).Name
		switch f.Kind() {
		case reflect.Uint64:
			out[name] = f.Uint()
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				out[name+"."+itoa(j)] = f.Index(j).Uint()
			}
		case reflect.Struct: // TrafficWindows: fold into total+peak
			if name == "Windows" {
				out["Windows.Total"] = r.Windows.Total()
				out["Windows.Peak"] = r.Windows.Peak()
			}
		}
	}
	out["Cycles"] = uint64(r.Cycles)
	return out
}

func itoa(i int) string {
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func goldenPath() string { return filepath.Join("testdata", "golden_runs.json") }

func TestGoldenRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs are full simulations")
	}
	got := make(map[string]map[string]uint64)
	for _, c := range goldenCases() {
		got[c.Name] = flatten(runStats(t, c))
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fixtures rewritten: %s", goldenPath())
		return
	}
	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update-golden to create): %v", err)
	}
	var want map[string]map[string]uint64
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, wc := range want {
		gc, ok := got[name]
		if !ok {
			t.Errorf("%s: golden case no longer runs", name)
			continue
		}
		for counter, wv := range wc {
			if gv := gc[counter]; gv != wv {
				t.Errorf("%s: %s = %d, want %d", name, counter, gv, wv)
			}
		}
		for counter := range gc {
			if _, ok := wc[counter]; !ok {
				t.Errorf("%s: counter %s missing from fixtures (re-run -update-golden?)", name, counter)
			}
		}
	}
}

// TestGoldenRepeatable: two back-to-back runs of the same configuration in
// the same process are identical — the engine keeps no hidden global state.
func TestGoldenRepeatable(t *testing.T) {
	c := goldenCase{"tpcw-cgct", "tpc-w", Options{OpsPerProc: 30_000, Seed: 9, CGCT: true}}
	a := flatten(runStats(t, c))
	b := flatten(runStats(t, c))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical runs produced different statistics")
	}
}
